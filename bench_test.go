package cmpi_test

// One benchmark per table/figure of the paper (regenerating the artifact
// and reporting its headline number as a custom metric), plus ablation
// benchmarks for the design choices called out in DESIGN.md and host-time
// benchmarks of the simulator itself.
//
// The experiment benchmarks are deterministic in virtual time; run them
// with -benchtime=1x for a single regeneration:
//
//	go test -bench=. -benchmem -benchtime=1x

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"cmpi"
	"cmpi/internal/core"
	"cmpi/internal/experiments"
	"cmpi/internal/mpi"
	"cmpi/internal/sim"
)

// runExperiment regenerates one artifact per iteration and lets extract
// pull a headline metric out of the table.
func runExperiment(b *testing.B, id string, extract func(t *experiments.Table) (float64, string)) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if extract != nil {
			v, unit := extract(tab)
			b.ReportMetric(v, unit)
		}
	}
}

func cellF(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkFigure1_Graph500Default(b *testing.B) {
	runExperiment(b, "fig1", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[3][2]), "x_4cont_vs_native"
	})
}

func BenchmarkFigure3a_Breakdown(b *testing.B) {
	runExperiment(b, "fig3a", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[3][1]), "commpct_4cont"
	})
}

func BenchmarkFigure3bc_Channels(b *testing.B) {
	runExperiment(b, "fig3bc", func(t *experiments.Table) (float64, string) {
		// HCA/SHM latency ratio at the first probed size.
		return cellF(b, t.Rows[0][3]) / cellF(b, t.Rows[0][1]), "x_hca_vs_shm_lat"
	})
}

func BenchmarkTableI_ChannelCounts(b *testing.B) {
	runExperiment(b, "tableI", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[2][4]), "hca_ops_4cont"
	})
}

func BenchmarkFigure7a_EagerSize(b *testing.B) {
	runExperiment(b, "fig7a", func(t *experiments.Table) (float64, string) {
		best, bestBW := 0.0, 0.0
		for _, row := range t.Rows {
			if bw := cellF(b, row[2]); bw > bestBW {
				best, bestBW = cellF(b, row[0]), bw
			}
		}
		return best, "best_eager_bytes"
	})
}

func BenchmarkFigure7b_LengthQueue(b *testing.B) {
	runExperiment(b, "fig7b", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[3][2]) / cellF(b, t.Rows[0][2]), "x_128K_vs_16K"
	})
}

func BenchmarkFigure7c_IBAThreshold(b *testing.B) {
	runExperiment(b, "fig7c", nil)
}

func BenchmarkFigure8_TwoSided(b *testing.B) {
	runExperiment(b, "fig8", func(t *experiments.Table) (float64, string) {
		// 1KiB row: Cont-intra-Def vs Cont-intra-Opt latency.
		for _, row := range t.Rows {
			if row[0] == "1024" {
				return cellF(b, row[1]) / cellF(b, row[2]), "x_def_vs_opt_lat_1K"
			}
		}
		return 0, "x_def_vs_opt_lat_1K"
	})
}

func BenchmarkFigure9_OneSided(b *testing.B) {
	runExperiment(b, "fig9", nil)
}

func BenchmarkFigure10_Collectives(b *testing.B) {
	runExperiment(b, "fig10", func(t *experiments.Table) (float64, string) {
		var sum float64
		for _, row := range t.Rows {
			sum += cellF(b, row[5])
		}
		return sum / float64(len(t.Rows)), "mean_improvement_pct"
	})
}

func BenchmarkFigure11_Graph500Proposed(b *testing.B) {
	runExperiment(b, "fig11", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[3][3]), "improvement_pct_4cont"
	})
}

func BenchmarkFigure12_Applications(b *testing.B) {
	runExperiment(b, "fig12", func(t *experiments.Table) (float64, string) {
		return cellF(b, t.Rows[1][4]), "cg_improvement_pct"
	})
}

// --- ablations ---------------------------------------------------------

// pairWorldB builds the standard 2-container pair world for ablations.
func pairWorldB(b *testing.B, tweak func(*cmpi.Options)) *cmpi.World {
	b.Helper()
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.TwoContainersSockets(clu, true, cmpi.PaperScenarioOpts())
	if err != nil {
		b.Fatal(err)
	}
	opts := cmpi.DefaultOptions()
	if tweak != nil {
		tweak(&opts)
	}
	w, err := cmpi.NewWorld(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkAblationChannelSwitch compares all-SHM, all-CMA and the paper's
// switched SHM/CMA configuration at the 8K boundary size, reporting the
// virtual one-way latency of each policy.
func BenchmarkAblationChannelSwitch(b *testing.B) {
	policies := []struct {
		name  string
		tweak func(*cmpi.Options)
	}{
		{"allSHM", func(o *cmpi.Options) {
			o.Tunables.UseCMA = false
			o.Tunables.SMPEagerSize = 1 << 21
			o.Tunables.SMPLengthQueue = 1 << 22
		}},
		{"allCMA", func(o *cmpi.Options) { o.Tunables.SMPEagerSize = 64 }},
		{"switched", nil},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			cfg := cmpi.OSUConfig{Iters: 50, Warmup: 5, Window: 16}
			for i := 0; i < b.N; i++ {
				// Probe the small and large regimes.
				w := pairWorldB(b, pol.tweak)
				s, err := cmpi.OSULatency(w, []int{256, 65536}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				small, _ := s.At(256)
				big, _ := s.At(65536)
				b.ReportMetric(small, "us_small")
				b.ReportMetric(big, "us_large")
			}
		})
	}
}

// BenchmarkAblationFlatVsHierarchical compares flat recursive-doubling
// allreduce with the two-level leader-based extension at 64 ranks over 4
// hosts.
func BenchmarkAblationFlatVsHierarchical(b *testing.B) {
	measure := func(b *testing.B, hier bool) float64 {
		spec := cmpi.ChameleonSpec()
		spec.Hosts = 4
		clu := cmpi.NewCluster(spec)
		d, err := cmpi.Containers(clu, 4, 64, cmpi.PaperScenarioOpts())
		if err != nil {
			b.Fatal(err)
		}
		opts := cmpi.DefaultOptions()
		opts.HierarchicalCollectives = hier
		w, err := cmpi.NewWorld(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(func(r *cmpi.Rank) error {
			buf := make([]byte, 1024)
			for i := 0; i < 20; i++ {
				r.Allreduce(buf, cmpi.SumFloat64)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		return w.MaxBodyTime().Micros() / 20
	}
	for _, variant := range []struct {
		name string
		hier bool
	}{{"flat", false}, {"hierarchical", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(measure(b, variant.hier), "us_per_allreduce")
			}
		})
	}
}

// BenchmarkAblationDetectorLocking compares MPI_Init time with the paper's
// lock-free byte-per-rank container list against a mutex-protected list.
func BenchmarkAblationDetectorLocking(b *testing.B) {
	measure := func(b *testing.B, locked bool) float64 {
		clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
		d, err := cmpi.Containers(clu, 4, 24, cmpi.PaperScenarioOpts())
		if err != nil {
			b.Fatal(err)
		}
		opts := cmpi.DefaultOptions()
		opts.LockedDetector = locked
		w, err := cmpi.NewWorld(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		var initDone cmpi.Time
		if err := w.Run(func(r *cmpi.Rank) error {
			if r.Now() > initDone {
				initDone = r.Now()
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		return initDone.Micros()
	}
	for _, variant := range []struct {
		name   string
		locked bool
	}{{"lockfree", false}, {"locked", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(measure(b, variant.locked), "us_init_24ranks")
			}
		})
	}
}

// BenchmarkAblationLoopbackPerOp shows the model sensitivity behind the
// bottleneck: zeroing the loopback per-op cost collapses the default/aware
// latency gap, confirming the gap is the HCA loopback's fault.
func BenchmarkAblationLoopbackPerOp(b *testing.B) {
	latency := func(b *testing.B, perOpNs float64) float64 {
		w := pairWorldB(b, func(o *cmpi.Options) {
			*o = cmpi.StockOptions()
			o.Params.IBLoopPerOp = sim.FromNanos(perOpNs)
		})
		s, err := cmpi.OSULatency(w, []int{1024}, cmpi.OSUConfig{Iters: 50, Warmup: 5, Window: 16})
		if err != nil {
			b.Fatal(err)
		}
		v, _ := s.At(1024)
		return v
	}
	for _, variant := range []struct {
		name string
		ns   float64
	}{{"modeled1200ns", 1200}, {"hypothetical0ns", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(latency(b, variant.ns), "us_default_1K")
			}
		})
	}
}

// --- simulator host-time benchmarks -------------------------------------

// BenchmarkSimEngineEventThroughput measures raw event dispatch rate.
func BenchmarkSimEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHostTimePingPong measures host seconds per simulated message.
func BenchmarkHostTimePingPong(b *testing.B) {
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.TwoContainersSockets(clu, true, cmpi.PaperScenarioOpts())
	if err != nil {
		b.Fatal(err)
	}
	w, err := cmpi.NewWorld(d, cmpi.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(r *cmpi.Rank) error {
		msg := make([]byte, 1024)
		for i := 0; i < b.N; i++ {
			if r.Rank() == 0 {
				r.Send(1, 0, msg)
				r.Recv(1, 1, msg)
			} else {
				r.Recv(0, 0, msg)
				r.Send(0, 1, msg)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHostTimeAllreduce64 measures host cost of a 64-rank collective.
func BenchmarkHostTimeAllreduce64(b *testing.B) {
	spec := cmpi.ChameleonSpec()
	spec.Hosts = 4
	clu := cmpi.NewCluster(spec)
	d, err := cmpi.Containers(clu, 4, 64, cmpi.PaperScenarioOpts())
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpi.NewWorld(d, mpi.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(r *mpi.Rank) error {
		buf := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			r.Allreduce(buf, mpi.SumFloat64)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChannelSelection measures the per-message policy decision.
func BenchmarkChannelSelection(b *testing.B) {
	tun := core.DefaultTunables()
	cap := core.PeerCapabilities{SameHost: true, SharedIPC: true, SharedPID: true, DetectedLocal: true}
	for i := 0; i < b.N; i++ {
		core.SelectPath(core.ModeLocalityAware, tun, cap, i%(1<<20))
	}
}

// BenchmarkExtScaling regenerates the beyond-the-paper scaling sweep.
func BenchmarkExtScaling(b *testing.B) {
	runExperiment(b, "ext-scaling", func(t *experiments.Table) (float64, string) {
		last := t.Rows[len(t.Rows)-1]
		return cellF(b, last[4]), "improvement_pct_largest"
	})
}

// BenchmarkSweepWorkers regenerates a sweep-heavy figure with the
// experiment worker pool pinned at 1 and 4 workers: the ratio of the two
// times is the parallel-sweep speedup (tables are byte-identical either way).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			experiments.SetWorkers(workers)
			defer experiments.SetWorkers(0)
			runExperiment(b, "fig3bc", nil)
		})
	}
}
