// Package cmpi is a locality-aware MPI library for container-based HPC
// clouds, reproducing Zhang, Lu and Panda, "High Performance MPI Library
// for Container-Based HPC Cloud on InfiniBand Clusters" (ICPP 2016) as a
// deterministic virtual-time simulation.
//
// The library models a cluster of multi-socket InfiniBand hosts running
// Docker-style containers, and an MVAPICH2-like MPI runtime with three
// communication channels: user-space shared memory (SHM), Cross Memory
// Attach (CMA), and the InfiniBand HCA. In its default mode the runtime —
// like stock MPI — detects locality by hostname, so co-resident containers
// look remote and talk through the slow HCA loopback. In locality-aware
// mode the paper's Container Locality Detector discovers co-residence
// through a byte-per-rank list in host-wide shared memory and reroutes
// traffic onto SHM/CMA.
//
// Quick start:
//
//	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 2, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
//	deploy, _ := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
//	world, _ := cmpi.NewWorld(deploy, cmpi.DefaultOptions())
//	world.Run(func(r *cmpi.Rank) error {
//		sum := r.AllreduceFloat64(float64(r.Rank()), cmpi.SumFloat64)
//		if r.Rank() == 0 {
//			fmt.Printf("sum of ranks: %v at t=%v\n", sum, r.Now())
//		}
//		return nil
//	})
//
// All communication moves real bytes; all time is virtual and
// deterministic (identical runs produce identical timings).
package cmpi

import (
	"io"

	"cmpi/internal/cluster"
	"cmpi/internal/core"
	"cmpi/internal/fault"
	"cmpi/internal/graph500"
	"cmpi/internal/mpi"
	"cmpi/internal/npb"
	"cmpi/internal/osu"
	"cmpi/internal/perf"
	"cmpi/internal/profile"
	rec "cmpi/internal/recover"
	"cmpi/internal/sim"
	"cmpi/internal/trace"
)

// Cluster and deployment model.
type (
	// ClusterSpec describes the hardware of a homogeneous cluster.
	ClusterSpec = cluster.Spec
	// Cluster is an instantiated set of hosts.
	Cluster = cluster.Cluster
	// Host is one physical node.
	Host = cluster.Host
	// Container is one isolated execution environment on a host.
	Container = cluster.Container
	// RunOpts mirrors the docker-run flags relevant to the paper.
	RunOpts = cluster.RunOpts
	// ScenarioOpts configures the standard deployment builders.
	ScenarioOpts = cluster.ScenarioOpts
	// Deployment is a rank-to-container mapping for one job.
	Deployment = cluster.Deployment
	// Placement binds one rank to an environment and core.
	Placement = cluster.Placement
)

// MPI runtime.
type (
	// Options configures an MPI job (mode, tunables, cost model).
	Options = mpi.Options
	// World is one MPI job.
	World = mpi.World
	// Rank is one MPI process; communication methods hang off it.
	Rank = mpi.Rank
	// Request is a nonblocking operation handle.
	Request = mpi.Request
	// Status describes a completed receive.
	Status = mpi.Status
	// Win is a one-sided communication window.
	Win = mpi.Win
	// Comm is a communicator (subset of ranks with a private matching
	// context), created with Rank.CommWorld and Comm.Split.
	Comm = mpi.Comm
	// ReduceOp combines byte buffers elementwise for reductions.
	ReduceOp = mpi.ReduceOp
	// Mode selects hostname-based or locality-aware channel selection.
	Mode = core.Mode
	// Tunables are the MVAPICH-style channel parameters.
	Tunables = core.Tunables
	// PerfParams is the calibrated hardware cost model.
	PerfParams = perf.Params
	// Time is virtual time (picosecond resolution).
	Time = sim.Time
	// Profile is the mpiP-style job profile.
	Profile = profile.Profile
)

// Modes and wildcards.
const (
	// ModeDefault is stock hostname-based locality (the paper's baseline).
	ModeDefault = core.ModeDefault
	// ModeLocalityAware enables the Container Locality Detector.
	ModeLocalityAware = core.ModeLocalityAware
	// AnySource matches any sender in Recv/Irecv.
	AnySource = mpi.AnySource
	// AnyTag matches any tag in Recv/Irecv.
	AnyTag = mpi.AnyTag
	// Undefined is the MPI_UNDEFINED split color (join no communicator).
	Undefined = mpi.Undefined
)

// Reduction operators.
var (
	// SumFloat64 adds float64 vectors.
	SumFloat64 = mpi.SumFloat64
	// MaxFloat64 takes elementwise float64 maxima.
	MaxFloat64 = mpi.MaxFloat64
	// SumInt64 adds int64 vectors.
	SumInt64 = mpi.SumInt64
	// MinInt64 takes elementwise int64 minima.
	MinInt64 = mpi.MinInt64
	// MaxInt64 takes elementwise int64 maxima.
	MaxInt64 = mpi.MaxInt64
	// BOr is bitwise OR over raw bytes.
	BOr = mpi.BOr
)

// Fault injection and error handling.
type (
	// FaultPlan is a deterministic fault schedule; hand one to
	// Options.FaultPlan and identical plans produce identical outcomes.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault in a plan.
	FaultEvent = fault.Event
	// FaultKind selects a fault class (LinkFlap, SendDrop, RankCrash, ...).
	FaultKind = fault.Kind
	// FaultStats counts retransmissions and channel fallbacks per rank.
	FaultStats = profile.FaultStats
	// ErrorHandler selects job behaviour on channel errors
	// (ErrorsAreFatal or ErrorsReturn), like MPI_Errhandler.
	ErrorHandler = mpi.ErrorHandler
	// RankError wraps a failure with the rank identity and virtual time.
	RankError = mpi.RankError
	// ChannelError reports a broken HCA channel to one peer.
	ChannelError = mpi.ChannelError
	// CrashError reports an injected rank crash.
	CrashError = mpi.CrashError
)

// Fault kinds (see FaultPlan builders for the usual way to schedule them).
const (
	LinkFlap      = fault.LinkFlap
	LinkDegrade   = fault.LinkDegrade
	LoopStall     = fault.LoopStall
	SendDrop      = fault.SendDrop
	ShmAttachFail = fault.ShmAttachFail
	CMAFail       = fault.CMAFail
	RankCrash     = fault.RankCrash
	Straggler     = fault.Straggler
)

// Error handlers and fault wildcards.
const (
	// ErrorsAreFatal aborts the job on the first channel error (default,
	// MPI_ERRORS_ARE_FATAL).
	ErrorsAreFatal = mpi.ErrorsAreFatal
	// ErrorsReturn completes affected requests with an error and lets ranks
	// continue (MPI_ERRORS_RETURN).
	ErrorsReturn = mpi.ErrorsReturn
	// AnyTarget is the FaultEvent host/rank wildcard.
	AnyTarget = fault.Any
)

// ErrInjected is the sentinel all injected faults wrap; test with errors.Is.
var ErrInjected = fault.ErrInjected

// Recovery: coordinated checkpointing, restart, and communicator shrink
// (see docs/FAULTS.md, "Recovery").
type (
	// RecoverOptions configures World.RunRecoverable (policy, restart
	// budget, checkpoint store).
	RecoverOptions = mpi.RecoverOptions
	// RecoverPolicy selects how a restart rebuilds the world: respawn the
	// casualties or shrink to the survivors.
	RecoverPolicy = rec.Policy
	// RecoverReport summarizes a recoverable run (attempts, failures,
	// final size, final virtual time).
	RecoverReport = rec.Report
	// CheckpointStore holds committed checkpoints across restarts.
	CheckpointStore = rec.Store
	// CheckpointSnapshot is one committed coordinated checkpoint.
	CheckpointSnapshot = rec.Snapshot
	// ProcFailedError reports a dead peer to a survivor under ErrorsRecover.
	ProcFailedError = mpi.ProcFailedError
	// CheckpointError reports an aborted checkpoint barrier.
	CheckpointError = mpi.CheckpointError
)

// Recovery policies and the ULFM-style error handler.
const (
	// ErrorsRecover keeps survivors running when a rank crashes
	// (ULFM-style): operations on dead peers fail fast and Comm.Shrink
	// repairs the communicator in-world.
	ErrorsRecover = mpi.ErrorsRecover
	// PolicyRespawn restarts with casualties respawned on surviving hosts.
	PolicyRespawn = rec.PolicyRespawn
	// PolicyShrink restarts with the world shrunk to the survivors.
	PolicyShrink = rec.PolicyShrink
)

// NewCheckpointStore returns an empty checkpoint store; share one across
// the restarts of a job via RecoverOptions.Store.
func NewCheckpointStore() *CheckpointStore { return rec.NewStore() }

// ShrinkFaultPlan ddmin-shrinks a failing fault plan to a minimal plan that
// still makes fails return true — the chaos harness's repro step.
func ShrinkFaultPlan(p *FaultPlan, fails func(*FaultPlan) bool) *FaultPlan {
	return fault.ShrinkPlan(p, fails)
}

// NewFaultPlan returns an empty fault plan for fluent building.
func NewFaultPlan() *FaultPlan { return fault.NewPlan() }

// RandomFaultPlan generates a seeded plan of n events over [0, span) for a
// hosts x ranks geometry — deterministic per seed, for stress testing.
func RandomFaultPlan(seed int64, hosts, ranks, n int, span Time) *FaultPlan {
	return fault.RandomPlan(seed, hosts, ranks, n, span)
}

// Structured tracing (see docs/TRACING.md).
type (
	// TraceRecorder streams a world's structured trace; set Options.Record.
	// A recorder is single-shot: build a fresh one per world.
	TraceRecorder = trace.Recorder
	// Trace is a decoded trace: header plus records in commit order.
	Trace = trace.Trace
	// TraceRecord is one traced event (message, protocol transition, fault).
	TraceRecord = trace.Record
	// TraceSummary is the result of replaying a trace offline: per-rank
	// channel counters, per-path latency, histograms, and fault totals.
	TraceSummary = trace.Summary
)

// NewTraceRecorder returns a recorder that streams the versioned trace to w
// as records commit; hand it to Options.Record. Recording keeps full
// epoch-parallel dispatch and writes byte-identical traces at every width.
func NewTraceRecorder(w io.Writer) *TraceRecorder { return trace.NewRecorder(w) }

// ReadTrace decodes a recorded trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReplayTrace reconstructs a recorded run's profile counters, message-size
// histograms, and per-path latency from the trace alone — no world, no rank
// goroutines. Render the result with its Render method.
func ReplayTrace(tr *Trace) *TraceSummary { return trace.Replay(tr) }

// DiffTraces reports the first divergent record between two traces, or ""
// when they are identical — the fast regression check.
func DiffTraces(a, b *Trace) string { return trace.Diff(a, b) }

// RetryTimeoutFromExponent converts an MVAPICH-style local-ACK-timeout
// exponent (MV2_DEFAULT_TIME_OUT) to a virtual duration: 4.096us * 2^exp.
func RetryTimeoutFromExponent(exp int) Time { return core.RetryTimeoutFromExponent(exp) }

// NewCluster builds a cluster from spec (panics on invalid specs; use
// NewClusterE for graceful handling).
func NewCluster(spec ClusterSpec) *Cluster { return cluster.MustNew(spec) }

// NewClusterE builds a cluster from spec, returning a descriptive error for
// invalid specs instead of panicking.
func NewClusterE(spec ClusterSpec) (*Cluster, error) { return cluster.New(spec) }

// ChameleonSpec returns the paper's testbed: 16 nodes, 2x12 cores, FDR HCAs.
func ChameleonSpec() ClusterSpec { return cluster.ChameleonSpec() }

// Native deploys procs ranks directly on the hosts (no containers).
func Native(c *Cluster, procs int) (*Deployment, error) { return cluster.Native(c, procs) }

// Containers deploys procs ranks across containersPerHost containers on
// every host.
func Containers(c *Cluster, containersPerHost, procs int, opts ScenarioOpts) (*Deployment, error) {
	return cluster.Containers(c, containersPerHost, procs, opts)
}

// TwoContainersSockets builds the 2-rank pt2pt scenario of the paper's
// Figs. 8/9 (intra- or inter-socket container pair on one host).
func TwoContainersSockets(c *Cluster, sameSocket bool, opts ScenarioOpts) (*Deployment, error) {
	return cluster.TwoContainersSockets(c, sameSocket, opts)
}

// NativePair builds the matching native 2-rank scenario.
func NativePair(c *Cluster, sameSocket bool) (*Deployment, error) {
	return cluster.NativePair(c, sameSocket)
}

// PaperScenarioOpts is the paper's container config: privileged with host
// IPC and PID namespaces shared.
func PaperScenarioOpts() ScenarioOpts { return cluster.PaperScenarioOpts() }

// IsolatedScenarioOpts keeps containers fully namespace-isolated.
func IsolatedScenarioOpts() ScenarioOpts { return cluster.IsolatedScenarioOpts() }

// NewWorld builds an MPI job on a deployment.
func NewWorld(d *Deployment, opts Options) (*World, error) { return mpi.NewWorld(d, opts) }

// DefaultOptions is the paper's proposed configuration (locality-aware,
// container-tuned channel parameters).
func DefaultOptions() Options { return mpi.DefaultOptions() }

// StockOptions is unmodified MVAPICH2 behaviour (hostname locality).
func StockOptions() Options { return mpi.StockOptions() }

// OptionsFromEnv applies MVAPICH2-compatible MV2_* environment variables
// (MV2_SMP_EAGERSIZE, MV2_IBA_EAGER_THRESHOLD, MV2_CONTAINER_SUPPORT, ...)
// to a base option set.
func OptionsFromEnv(base Options, env map[string]string) (Options, error) {
	return mpi.OptionsFromEnv(base, env)
}

// DefaultTunables returns the paper-tuned channel parameters
// (SMP_EAGER_SIZE=8K, SMPI_LENGTH_QUEUE=128K, MV2_IBA_EAGER_THRESHOLD=17K).
func DefaultTunables() Tunables { return core.DefaultTunables() }

// DefaultPerfParams returns the cost model calibrated to the paper's
// Chameleon testbed.
func DefaultPerfParams() PerfParams { return perf.Default() }

// Workloads.
type (
	// Graph500Params configures the Graph 500 benchmark.
	Graph500Params = graph500.Params
	// Graph500Result is a Graph 500 outcome.
	Graph500Result = graph500.Result
	// NPBClass selects an NPB problem size.
	NPBClass = npb.Class
	// NPBResult is one NPB kernel outcome.
	NPBResult = npb.Result
	// OSUConfig controls micro-benchmark iteration counts.
	OSUConfig = osu.Config
	// OSUSeries is a micro-benchmark sweep over message sizes.
	OSUSeries = osu.Series
)

// NPB classes.
const (
	ClassS = npb.ClassS
	ClassW = npb.ClassW
	ClassA = npb.ClassA
	ClassB = npb.ClassB
)

// RunGraph500 executes Graph 500 on a world.
func RunGraph500(w *World, p Graph500Params) (Graph500Result, error) { return graph500.Run(w, p) }

// Graph500Defaults returns the paper's Graph 500 configuration at a scale.
func Graph500Defaults(scale int) Graph500Params { return graph500.DefaultParams(scale) }

// NPB kernels.
var (
	// RunEP is the embarrassingly parallel kernel.
	RunEP = npb.RunEP
	// RunCG is the conjugate-gradient kernel.
	RunCG = npb.RunCG
	// RunFT is the FFT/transpose kernel.
	RunFT = npb.RunFT
	// RunIS is the integer-sort kernel.
	RunIS = npb.RunIS
	// RunMG is the multigrid kernel.
	RunMG = npb.RunMG
)

// OSU micro-benchmarks.
var (
	// OSULatency is the osu_latency ping-pong (us).
	OSULatency = osu.Latency
	// OSUBandwidth is osu_bw (MB/s).
	OSUBandwidth = osu.Bandwidth
	// OSUBiBandwidth is osu_bibw (MB/s).
	OSUBiBandwidth = osu.BiBandwidth
	// OSUMessageRate is the message-rate variant of osu_bw (msg/s).
	OSUMessageRate = osu.MessageRate
	// OSUPutLatency / OSUGetLatency are the one-sided latency benches (us).
	OSUPutLatency = osu.PutLatency
	OSUGetLatency = osu.GetLatency
	// OSUPutBandwidth / OSUGetBandwidth / OSUPutBiBandwidth are the
	// one-sided bandwidth benches (MB/s).
	OSUPutBandwidth   = osu.PutBandwidth
	OSUGetBandwidth   = osu.GetBandwidth
	OSUPutBiBandwidth = osu.PutBiBandwidth
)

// DefaultOSUConfig mirrors OSU defaults scaled for simulation.
func DefaultOSUConfig() OSUConfig { return osu.DefaultConfig() }

// PowersOfTwo enumerates message sizes {lo, 2lo, ..., hi}.
func PowersOfTwo(lo, hi int) []int { return osu.PowersOfTwo(lo, hi) }

// Encoding helpers for reductions and typed buffers.
var (
	// EncodeFloat64s / DecodeFloat64s serialize little-endian float64 vectors.
	EncodeFloat64s = mpi.EncodeFloat64s
	DecodeFloat64s = mpi.DecodeFloat64s
	// EncodeInt64s / DecodeInt64s serialize little-endian int64 vectors.
	EncodeInt64s = mpi.EncodeInt64s
	DecodeInt64s = mpi.DecodeInt64s
)

// EncodeFloat64 serializes one float64.
func EncodeFloat64(v float64) []byte { return mpi.EncodeFloat64s([]float64{v}) }

// DecodeFloat64 deserializes one float64.
func DecodeFloat64(b []byte) float64 { return mpi.DecodeFloat64s(b)[0] }

// TimeFromSeconds converts seconds to virtual Time.
func TimeFromSeconds(s float64) Time { return sim.FromSeconds(s) }

// TimeFromMicros converts microseconds to virtual Time.
func TimeFromMicros(us float64) Time { return sim.FromMicros(us) }
