module cmpi

go 1.22
