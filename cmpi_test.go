package cmpi_test

// Integration tests of the public facade: everything a downstream user
// touches, exercised end to end.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cmpi"
)

func paperPair(t testing.TB, opts cmpi.Options) *cmpi.World {
	t.Helper()
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.TwoContainersSockets(clu, true, cmpi.PaperScenarioOpts())
	if err != nil {
		t.Fatal(err)
	}
	w, err := cmpi.NewWorld(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicQuickstartFlow(t *testing.T) {
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 2, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
	if err != nil {
		t.Fatal(err)
	}
	w, err := cmpi.NewWorld(d, cmpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *cmpi.Rank) error {
		// Ring, collective, one-sided, communicator — the README flows.
		right, left := (r.Rank()+1)%r.Size(), (r.Rank()-1+r.Size())%r.Size()
		in := make([]byte, 1)
		r.Sendrecv(right, 0, []byte{byte(r.Rank())}, left, 0, in)
		if in[0] != byte(left) {
			return fmt.Errorf("ring got %d from %d", in[0], left)
		}
		if sum := r.AllreduceInt64(1, cmpi.SumInt64); sum != int64(r.Size()) {
			return fmt.Errorf("allreduce %d", sum)
		}
		win := r.WinCreate(make([]byte, 64))
		win.Fence()
		win.Put((r.Rank()+1)%r.Size(), 0, []byte{1})
		win.Fence()
		win.Free()
		sub := r.CommWorld().Split(r.Rank()%2, r.Rank())
		sub.Barrier()
		if got := len(r.LocalRanks()); got != 4 {
			return fmt.Errorf("locality sees %d ranks, want 4", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxBodyTime() <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestPublicWaitAnyTestAny(t *testing.T) {
	w := paperPair(t, cmpi.DefaultOptions())
	err := w.Run(func(r *cmpi.Rank) error {
		if r.Rank() == 0 {
			r.Compute(5000)
			r.Send(1, 2, []byte("second"))
			r.Send(1, 1, []byte("first!"))
			return nil
		}
		buf1 := make([]byte, 16)
		buf2 := make([]byte, 16)
		rq1 := r.Irecv(0, 1, buf1)
		rq2 := r.Irecv(0, 2, buf2)
		if _, _, ok := r.TestAny(rq1, rq2); ok {
			// Possible only if messages already arrived; fine either way.
			_ = ok
		}
		idx, st := r.WaitAny(rq1, rq2)
		if idx != 1 || st.Tag != 2 {
			return fmt.Errorf("WaitAny picked %d (%+v), want the tag-2 message first", idx, st)
		}
		r.Wait(rq1)
		if !r.TestAll(rq1, rq2) {
			return fmt.Errorf("TestAll false after both completed")
		}
		if !bytes.Equal(buf1[:6], []byte("first!")) || !bytes.Equal(buf2[:6], []byte("second")) {
			return fmt.Errorf("payloads scrambled: %q %q", buf1[:6], buf2[:6])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloadsRun(t *testing.T) {
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
	if err != nil {
		t.Fatal(err)
	}
	w, err := cmpi.NewWorld(d, cmpi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := cmpi.Graph500Defaults(10)
	p.Roots = 1
	res, err := cmpi.RunGraph500(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated || res.TEPS <= 0 {
		t.Fatalf("graph500 result %+v", res)
	}
	for name, kernel := range map[string]func(*cmpi.World, cmpi.NPBClass) (cmpi.NPBResult, error){
		"EP": cmpi.RunEP, "CG": cmpi.RunCG, "FT": cmpi.RunFT, "IS": cmpi.RunIS,
	} {
		clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
		d, _ := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
		w, _ := cmpi.NewWorld(d, cmpi.DefaultOptions())
		res, err := kernel(w, cmpi.ClassS)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s.S not verified", name)
		}
	}
}

func TestPublicOSUBenches(t *testing.T) {
	cfg := cmpi.OSUConfig{Iters: 10, Warmup: 2, Window: 8}
	lat, err := cmpi.OSULatency(paperPair(t, cmpi.DefaultOptions()), []int{1024}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lat.At(1024); !ok || v <= 0 {
		t.Fatalf("latency series %v", lat)
	}
	bw, err := cmpi.OSUBandwidth(paperPair(t, cmpi.DefaultOptions()), []int{65536}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := bw.At(65536); v < 1000 {
		t.Fatalf("bandwidth %v MB/s too low", bw)
	}
}

func TestPublicEncodingHelpers(t *testing.T) {
	if got := cmpi.DecodeFloat64(cmpi.EncodeFloat64(3.25)); got != 3.25 {
		t.Errorf("float round trip %v", got)
	}
	vs := []int64{-1, 0, 1 << 40}
	if got := cmpi.DecodeInt64s(cmpi.EncodeInt64s(vs)); got[0] != -1 || got[2] != 1<<40 {
		t.Errorf("int64 round trip %v", got)
	}
	if cmpi.TimeFromSeconds(1).Micros() != 1e6 {
		t.Error("TimeFromSeconds wrong")
	}
	if cmpi.TimeFromMicros(2.5).Nanos() != 2500 {
		t.Error("TimeFromMicros wrong")
	}
}

func TestPublicDeterminism(t *testing.T) {
	run := func() cmpi.Time {
		clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 2, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
		d, _ := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
		w, _ := cmpi.NewWorld(d, cmpi.DefaultOptions())
		if err := w.Run(func(r *cmpi.Rank) error {
			rng := rand.New(rand.NewSource(int64(r.Rank())))
			for i := 0; i < 20; i++ {
				sz := 1 + rng.Intn(1<<14) // random sizes, matched pattern
				shift := 1 + i%(r.Size()-1)
				dst := (r.Rank() + shift) % r.Size()
				src := (r.Rank() - shift + r.Size()) % r.Size()
				rq := r.Irecv(src, i, make([]byte, 1<<14))
				r.Send(dst, i, make([]byte, sz))
				r.Wait(rq)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxBodyTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("public API runs diverge: %v vs %v", a, b)
	}
}

func TestPublicStockVsDefaultOptionsDiffer(t *testing.T) {
	stock := cmpi.StockOptions()
	aware := cmpi.DefaultOptions()
	if stock.Mode == aware.Mode {
		t.Error("StockOptions should flip the mode")
	}
	if stock.Tunables != aware.Tunables {
		t.Error("both options should share the tuned channel parameters")
	}
	tun := cmpi.DefaultTunables()
	if tun.SMPEagerSize != 8192 || tun.SMPLengthQueue != 128*1024 || tun.IBAEagerThreshold != 17*1024 {
		t.Errorf("paper-tuned values wrong: %+v", tun)
	}
	if cmpi.ChameleonSpec().Hosts != 16 {
		t.Error("chameleon spec wrong")
	}
	if cmpi.DefaultPerfParams().IBBWInter <= 0 {
		t.Error("perf params not initialized")
	}
}

func TestPublicNewClusterE(t *testing.T) {
	if _, err := cmpi.NewClusterE(cmpi.ClusterSpec{Hosts: 0}); err == nil {
		t.Error("NewClusterE must reject an empty spec")
	}
	clu, err := cmpi.NewClusterE(cmpi.ClusterSpec{Hosts: 1, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	if err != nil || clu == nil {
		t.Fatalf("NewClusterE(valid) = %v, %v", clu, err)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	clu := cmpi.NewCluster(cmpi.ClusterSpec{Hosts: 2, SocketsPerHost: 2, CoresPerSocket: 12, HCAsPerHost: 1})
	d, err := cmpi.Containers(clu, 2, 8, cmpi.PaperScenarioOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := cmpi.DefaultOptions()
	opts.Profile = true
	opts.FaultPlan = cmpi.NewFaultPlan().
		LinkFlap(0, 20*cmpi.TimeFromMicros(1), 100*cmpi.TimeFromMicros(1)).
		CMAFail(0, 0, 0).
		SendDrops(1, 0, 0, 2)
	w, err := cmpi.NewWorld(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *cmpi.Rank) error {
		buf := cmpi.EncodeFloat64s(make([]float64, 32768))
		r.Allreduce(buf, cmpi.SumFloat64)
		return nil
	})
	if err != nil {
		t.Fatalf("faulty public-API run failed: %v", err)
	}
	fs := w.Prof.TotalFaults()
	if fs.Total() == 0 {
		t.Errorf("fault plan left no trace in the profile: %+v", fs)
	}
}
